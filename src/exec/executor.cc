#include "src/exec/executor.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <unordered_map>

#include "src/common/string_util.h"
#include "src/exec/evaluator.h"
#include "src/exec/flat_hash.h"
#include "src/exec/join.h"

namespace cajade {

namespace {

/// Aliases referenced by a bound expression.
void CollectAliases(const Expr& e, std::set<int>* out) {
  switch (e.kind) {
    case ExprKind::kColumnRef:
      out->insert(e.bound_alias);
      break;
    case ExprKind::kBinary:
      CollectAliases(*e.left, out);
      CollectAliases(*e.right, out);
      break;
    case ExprKind::kAggregate:
      if (e.arg != nullptr) CollectAliases(*e.arg, out);
      break;
    default:
      break;
  }
}

/// An equality conjunct between two single columns of distinct aliases.
struct EquiCond {
  int alias_a = -1;
  int col_a = -1;
  int alias_b = -1;
  int col_b = -1;
};

bool AsEquiCond(const Expr& e, EquiCond* out) {
  if (e.kind != ExprKind::kBinary || e.op != BinaryOp::kEq) return false;
  if (e.left->kind != ExprKind::kColumnRef || e.right->kind != ExprKind::kColumnRef) {
    return false;
  }
  if (e.left->bound_alias == e.right->bound_alias) return false;
  out->alias_a = e.left->bound_alias;
  out->col_a = e.left->bound_index;
  out->alias_b = e.right->bound_alias;
  out->col_b = e.right->bound_index;
  return true;
}

/// Hash of a multi-column key of base-table cells addressed via a tuple.
/// Survives only in the ReferenceExecuteSpj oracle; the kernel-routed path
/// hashes typed composite keys instead.
struct TupleKeyHasher {
  uint64_t operator()(const std::vector<Value>& key) const {
    uint64_t h = 0x9876;
    for (const Value& v : key) {
      h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

/// State shared by the kernel-routed executor and the reference oracle:
/// everything up to (and after) the join loop is identical, only the join
/// machinery differs.
struct SpjState {
  size_t n_aliases = 0;
  std::vector<TablePtr> tables;
  std::vector<ExprPtr> conjuncts;
  std::vector<std::set<int>> conjunct_aliases;
  std::vector<bool> consumed;
  /// Base rows per alias surviving single-alias predicate pushdown.
  std::vector<std::vector<int64_t>> selected;
};

/// Resolves base tables, binds WHERE conjuncts, and runs single-alias
/// predicate pushdown.
Status PrepareSpj(const Database* db, const ParsedQuery& query, SpjState* st) {
  st->n_aliases = query.from.size();
  if (st->n_aliases == 0) {
    return Status::InvalidArgument("query has no FROM clause");
  }

  // Resolve base tables and build the global binding scope.
  st->tables.resize(st->n_aliases);
  BindScope scope;
  for (size_t i = 0; i < st->n_aliases; ++i) {
    ASSIGN_OR_RETURN(st->tables[i], db->GetTable(query.from[i].table_name));
    const Schema& schema = st->tables[i]->schema();
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      scope.AddColumn(query.from[i].alias, schema.column(c).name,
                      static_cast<int>(i), static_cast<int>(c));
    }
  }

  // Bind and classify WHERE conjuncts.
  SplitConjuncts(CloneExpr(query.where), &st->conjuncts);
  st->conjunct_aliases.resize(st->conjuncts.size());
  for (size_t i = 0; i < st->conjuncts.size(); ++i) {
    RETURN_NOT_OK(BindExpr(st->conjuncts[i].get(), scope));
    CollectAliases(*st->conjuncts[i], &st->conjunct_aliases[i]);
  }

  // Predicate pushdown: evaluate single-alias conjuncts on base tables.
  st->selected.resize(st->n_aliases);
  st->consumed.assign(st->conjuncts.size(), false);
  for (size_t a = 0; a < st->n_aliases; ++a) {
    std::vector<const Expr*> local;
    for (size_t i = 0; i < st->conjuncts.size(); ++i) {
      if (st->conjunct_aliases[i].size() == 1 &&
          *st->conjunct_aliases[i].begin() == static_cast<int>(a)) {
        local.push_back(st->conjuncts[i].get());
        st->consumed[i] = true;
      }
    }
    const Table& t = *st->tables[a];
    RowContext ctx;
    ctx.tables.assign(st->n_aliases, nullptr);
    ctx.rows.assign(st->n_aliases, 0);
    ctx.tables[a] = &t;
    st->selected[a].reserve(t.num_rows());
    for (size_t r = 0; r < t.num_rows(); ++r) {
      ctx.rows[a] = r;
      bool pass = true;
      for (const Expr* e : local) {
        ASSIGN_OR_RETURN(Value v, EvalExpr(*e, ctx));
        if (!IsTruthy(v)) {
          pass = false;
          break;
        }
      }
      if (pass) st->selected[a].push_back(static_cast<int64_t>(r));
    }
  }
  return Status::OK();
}

/// Applies residual multi-alias conjuncts and materializes the working table
/// (columns named "<alias>.<column>") plus per-alias source rows.
Result<SpjOutput> FinishSpj(const ParsedQuery& query, const SpjState& st,
                            const std::vector<int>& bound,
                            const std::vector<std::vector<int64_t>>& tuple_cols) {
  auto bound_pos = [&](int a) {
    return static_cast<size_t>(std::find(bound.begin(), bound.end(), a) -
                               bound.begin());
  };

  // Residual conjuncts over multiple aliases.
  std::vector<const Expr*> residual;
  for (size_t i = 0; i < st.conjuncts.size(); ++i) {
    if (!st.consumed[i]) residual.push_back(st.conjuncts[i].get());
  }
  size_t n_tuples = tuple_cols.empty() ? 0 : tuple_cols[0].size();
  std::vector<size_t> keep;
  keep.reserve(n_tuples);
  if (residual.empty()) {
    keep.resize(n_tuples);
    std::iota(keep.begin(), keep.end(), 0);
  } else {
    RowContext ctx;
    ctx.tables.resize(st.n_aliases);
    ctx.rows.resize(st.n_aliases);
    for (size_t a = 0; a < st.n_aliases; ++a) ctx.tables[a] = st.tables[a].get();
    for (size_t t = 0; t < n_tuples; ++t) {
      for (size_t k = 0; k < bound.size(); ++k) {
        ctx.rows[bound[k]] = static_cast<size_t>(tuple_cols[k][t]);
      }
      bool pass = true;
      for (const Expr* e : residual) {
        ASSIGN_OR_RETURN(Value v, EvalExpr(*e, ctx));
        if (!IsTruthy(v)) {
          pass = false;
          break;
        }
      }
      if (pass) keep.push_back(t);
    }
  }

  // Materialize the working table, columns named "<alias>.<column>".
  SpjOutput out;
  Schema working_schema;
  for (size_t a = 0; a < st.n_aliases; ++a) {
    out.aliases.push_back(query.from[a].alias);
    out.relations.push_back(query.from[a].table_name);
    for (const auto& col : st.tables[a]->schema().columns()) {
      RETURN_NOT_OK(working_schema.AddColumn(query.from[a].alias + "." + col.name,
                                             col.type));
    }
  }
  Table working("working", std::move(working_schema));
  working.Reserve(keep.size());
  size_t out_col = 0;
  for (size_t a = 0; a < st.n_aliases; ++a) {
    size_t pos = bound_pos(static_cast<int>(a));
    const std::vector<int64_t>& rows = tuple_cols[pos];
    const Table& src = *st.tables[a];
    for (size_t c = 0; c < src.num_columns(); ++c, ++out_col) {
      const Column& sc = src.column(c);
      Column& dc = working.column(out_col);
      // Type dispatch per column, not per cell: the gather loops stay tight.
      switch (sc.type()) {
        case DataType::kInt64:
          for (size_t t : keep) {
            int64_t r = rows[t];
            if (sc.IsNull(r)) {
              dc.AppendNull();
            } else {
              dc.AppendInt(sc.GetInt(r));
            }
          }
          break;
        case DataType::kDouble:
          for (size_t t : keep) {
            int64_t r = rows[t];
            if (sc.IsNull(r)) {
              dc.AppendNull();
            } else {
              dc.AppendDouble(sc.GetDouble(r));
            }
          }
          break;
        case DataType::kString:
          dc.AdoptDictionary(sc);
          for (size_t t : keep) {
            int64_t r = rows[t];
            if (sc.IsNull(r)) {
              dc.AppendNull();
            } else {
              dc.AppendCode(sc.GetCode(r));
            }
          }
          break;
        default:
          for (size_t i = 0; i < keep.size(); ++i) dc.AppendNull();
      }
    }
  }
  working.SetRowCount(keep.size());
  out.source_rows.resize(st.n_aliases);
  for (size_t a = 0; a < st.n_aliases; ++a) {
    size_t pos = bound_pos(static_cast<int>(a));
    out.source_rows[a].reserve(keep.size());
    for (size_t t : keep) out.source_rows[a].push_back(tuple_cols[pos][t]);
  }
  out.table = std::move(working);
  return out;
}

/// Picks the smallest unbound relation for a cross-product step (no join
/// predicate connects the remaining aliases to the bound set).
size_t SmallestUnbound(const SpjState& st,
                       const std::vector<int>& bound) {
  auto is_bound = [&](int a) {
    return std::find(bound.begin(), bound.end(), a) != bound.end();
  };
  size_t best = 0;
  size_t best_size = SIZE_MAX;
  for (size_t a = 0; a < st.n_aliases; ++a) {
    if (!is_bound(static_cast<int>(a)) && st.selected[a].size() < best_size) {
      best = a;
      best_size = st.selected[a].size();
    }
  }
  return best;
}

}  // namespace

const TableStats& QueryExecutor::Stats(const Table& table) const {
  MutexLock lock(stats_mu_);
  return stats_.Get(table);
}

const TableStats& QueryExecutor::StatsRanges(const Table& table) const {
  MutexLock lock(stats_mu_);
  return stats_.GetRanges(table);
}

Result<SpjOutput> QueryExecutor::ExecuteSpj(const ParsedQuery& query) const {
  SpjState st;
  RETURN_NOT_OK(PrepareSpj(db_, query, &st));

  // Join loop. Tuples are stored column-major: tuple_cols[k][t] is the base
  // row id of bound alias k in tuple t. The probe side starts with the first
  // FROM alias (keeping the seed's output grouping by first-alias order);
  // each step binds one more alias as the build side of a typed hash join.
  std::vector<int> bound = {0};
  std::vector<std::vector<int64_t>> tuple_cols(1);
  tuple_cols[0] = st.selected[0];

  auto is_bound = [&](int a) {
    return std::find(bound.begin(), bound.end(), a) != bound.end();
  };
  auto bound_pos = [&](int a) {
    return static_cast<size_t>(std::find(bound.begin(), bound.end(), a) -
                               bound.begin());
  };

  while (bound.size() < st.n_aliases) {
    // Greedy join ordering: among the unbound aliases connected to the bound
    // set by equality conjuncts, build the smallest side first. Ties break
    // toward the higher-distinct-count join key (lower expected fan-out),
    // then FROM-clause order. Cardinality is the post-pushdown row count;
    // ndv comes from the cached TableStats and is only computed when two
    // candidates actually tie, so simple queries never pay the
    // distinct-count scan.
    struct JoinCandidate {
      int alias;
      std::vector<size_t> ids;  ///< connecting conjunct indexes
    };
    std::vector<JoinCandidate> tied;  // all at the minimum selected size
    size_t best_size = SIZE_MAX;
    for (size_t a = 0; a < st.n_aliases; ++a) {
      if (is_bound(static_cast<int>(a))) continue;
      std::vector<size_t> ids;
      for (size_t i = 0; i < st.conjuncts.size(); ++i) {
        if (st.consumed[i]) continue;
        EquiCond ec;
        if (!AsEquiCond(*st.conjuncts[i], &ec)) continue;
        bool connects = (ec.alias_a == static_cast<int>(a) && is_bound(ec.alias_b)) ||
                        (ec.alias_b == static_cast<int>(a) && is_bound(ec.alias_a));
        if (connects) ids.push_back(i);
      }
      if (ids.empty()) continue;
      const size_t size = st.selected[a].size();
      if (size < best_size) {
        best_size = size;
        tied.clear();
      }
      if (size == best_size) {
        tied.push_back({static_cast<int>(a), std::move(ids)});
      }
    }
    int next = -1;
    std::vector<size_t> join_conjunct_ids;
    if (tied.size() == 1) {
      next = tied[0].alias;
      join_conjunct_ids = std::move(tied[0].ids);
    } else if (!tied.empty()) {
      size_t best_ndv = 0;
      for (auto& cand : tied) {
        size_t ndv = 1;
        if (best_size > 0) {
          const TableStats& ts = Stats(*st.tables[cand.alias]);
          for (size_t i : cand.ids) {
            EquiCond ec;
            AsEquiCond(*st.conjuncts[i], &ec);
            int col = ec.alias_a == cand.alias ? ec.col_a : ec.col_b;
            if (static_cast<size_t>(col) < ts.columns.size()) {
              ndv = std::max(ndv, ts.columns[col].ndv);
            }
          }
        }
        if (ndv > best_ndv) {
          next = cand.alias;
          join_conjunct_ids = std::move(cand.ids);
          best_ndv = ndv;
        }
      }
    }

    if (next < 0) {
      // Cross product with the smallest remaining relation.
      size_t best = SmallestUnbound(st, bound);
      size_t n_tuples = tuple_cols.empty() ? 0 : tuple_cols[0].size();
      std::vector<std::vector<int64_t>> out(bound.size() + 1);
      for (size_t t = 0; t < n_tuples; ++t) {
        for (int64_t r : st.selected[best]) {
          for (size_t k = 0; k < bound.size(); ++k) out[k].push_back(tuple_cols[k][t]);
          out.back().push_back(r);
        }
      }
      bound.push_back(static_cast<int>(best));
      tuple_cols = std::move(out);
      continue;
    }

    // Key columns: build side on the next alias, probe side addressed
    // through the bound tuple columns (possibly spanning several aliases).
    std::vector<int> next_keys;
    std::vector<ProbeKeyCol> probe;
    for (size_t i : join_conjunct_ids) {
      EquiCond ec;
      AsEquiCond(*st.conjuncts[i], &ec);
      int probe_alias, probe_col;
      if (ec.alias_a == next) {
        next_keys.push_back(ec.col_a);
        probe_alias = ec.alias_b;
        probe_col = ec.col_b;
      } else {
        next_keys.push_back(ec.col_b);
        probe_alias = ec.alias_a;
        probe_col = ec.col_a;
      }
      probe.push_back({&st.tables[probe_alias]->column(probe_col),
                       &tuple_cols[bound_pos(probe_alias)]});
      st.consumed[i] = true;
    }

    // Typed kernel join: (tuple index, build row) matches in tuple order.
    const Table& nt = *st.tables[next];
    size_t n_tuples = tuple_cols.empty() ? 0 : tuple_cols[0].size();
    auto matches = ProbeEquiJoin(nt, st.selected[next], next_keys, probe,
                                 n_tuples, &StatsRanges(nt));

    std::vector<std::vector<int64_t>> out(bound.size() + 1);
    for (auto& col : out) col.reserve(matches.size());
    for (const auto& [t, r] : matches) {
      for (size_t k = 0; k < bound.size(); ++k) {
        out[k].push_back(tuple_cols[k][static_cast<size_t>(t)]);
      }
      out.back().push_back(r);
    }
    bound.push_back(next);
    tuple_cols = std::move(out);
  }

  return FinishSpj(query, st, bound, tuple_cols);
}

Result<SpjOutput> QueryExecutor::ReferenceExecuteSpj(
    const ParsedQuery& query) const {
  SpjState st;
  RETURN_NOT_OK(PrepareSpj(db_, query, &st));

  // The seed's join loop: first textually-connected alias next, per-row
  // std::vector<Value> tuple keys into an unordered_multimap.
  std::vector<int> bound = {0};
  std::vector<std::vector<int64_t>> tuple_cols(1);
  tuple_cols[0] = st.selected[0];

  auto is_bound = [&](int a) {
    return std::find(bound.begin(), bound.end(), a) != bound.end();
  };
  auto bound_pos = [&](int a) {
    return static_cast<size_t>(std::find(bound.begin(), bound.end(), a) -
                               bound.begin());
  };

  while (bound.size() < st.n_aliases) {
    // Find an unbound alias connected to the bound set by equality conjuncts.
    int next = -1;
    std::vector<size_t> join_conjunct_ids;
    for (size_t a = 0; a < st.n_aliases && next < 0; ++a) {
      if (is_bound(static_cast<int>(a))) continue;
      join_conjunct_ids.clear();
      for (size_t i = 0; i < st.conjuncts.size(); ++i) {
        if (st.consumed[i]) continue;
        EquiCond ec;
        if (!AsEquiCond(*st.conjuncts[i], &ec)) continue;
        bool connects = (ec.alias_a == static_cast<int>(a) && is_bound(ec.alias_b)) ||
                        (ec.alias_b == static_cast<int>(a) && is_bound(ec.alias_a));
        if (connects) join_conjunct_ids.push_back(i);
      }
      if (!join_conjunct_ids.empty()) next = static_cast<int>(a);
    }

    if (next < 0) {
      // Cross product with the smallest remaining relation.
      size_t best = SmallestUnbound(st, bound);
      size_t n_tuples = tuple_cols.empty() ? 0 : tuple_cols[0].size();
      std::vector<std::vector<int64_t>> out(bound.size() + 1);
      for (size_t t = 0; t < n_tuples; ++t) {
        for (int64_t r : st.selected[best]) {
          for (size_t k = 0; k < bound.size(); ++k) out[k].push_back(tuple_cols[k][t]);
          out.back().push_back(r);
        }
      }
      bound.push_back(static_cast<int>(best));
      tuple_cols = std::move(out);
      continue;
    }

    // Hash join on all connecting equality conjuncts.
    std::vector<std::pair<int, int>> bound_keys;  // (bound alias, col)
    std::vector<int> next_keys;
    for (size_t i : join_conjunct_ids) {
      EquiCond ec;
      AsEquiCond(*st.conjuncts[i], &ec);
      if (ec.alias_a == next) {
        next_keys.push_back(ec.col_a);
        bound_keys.emplace_back(ec.alias_b, ec.col_b);
      } else {
        next_keys.push_back(ec.col_b);
        bound_keys.emplace_back(ec.alias_a, ec.col_a);
      }
      st.consumed[i] = true;
    }

    const Table& nt = *st.tables[next];
    std::unordered_multimap<std::vector<Value>, int64_t, TupleKeyHasher> build;
    build.reserve(st.selected[next].size() * 2);
    for (int64_t r : st.selected[next]) {
      std::vector<Value> key;
      key.reserve(next_keys.size());
      bool has_null = false;
      for (int c : next_keys) {
        Value v = nt.GetValue(r, c);
        if (v.is_null()) {
          has_null = true;
          break;
        }
        key.push_back(std::move(v));
      }
      if (!has_null) build.emplace(std::move(key), r);
    }

    size_t n_tuples = tuple_cols.empty() ? 0 : tuple_cols[0].size();
    std::vector<std::vector<int64_t>> out(bound.size() + 1);
    std::vector<Value> key(bound_keys.size());
    for (size_t t = 0; t < n_tuples; ++t) {
      bool has_null = false;
      for (size_t k = 0; k < bound_keys.size(); ++k) {
        auto [ba, bc] = bound_keys[k];
        key[k] = st.tables[ba]->GetValue(tuple_cols[bound_pos(ba)][t], bc);
        if (key[k].is_null()) {
          has_null = true;
          break;
        }
      }
      if (has_null) continue;
      auto range = build.equal_range(key);
      for (auto it = range.first; it != range.second; ++it) {
        for (size_t k = 0; k < bound.size(); ++k) out[k].push_back(tuple_cols[k][t]);
        out.back().push_back(it->second);
      }
    }
    bound.push_back(next);
    tuple_cols = std::move(out);
  }

  return FinishSpj(query, st, bound, tuple_cols);
}

namespace {

/// Accumulator for one aggregate over one group.
struct AggState {
  int64_t count = 0;
  double dsum = 0.0;
  int64_t isum = 0;
  bool any_double = false;
  bool has_value = false;
  Value min_v;
  Value max_v;

  void Add(const Value& v) {
    if (v.is_null()) return;
    ++count;
    if (v.is_double()) {
      any_double = true;
      dsum += v.AsDouble();
    } else if (v.is_int()) {
      isum += v.AsInt();
      dsum += static_cast<double>(v.AsInt());
    }
    if (!has_value || v < min_v) min_v = v;
    if (!has_value || v > max_v) max_v = v;
    has_value = true;
  }

  Value Finish(AggFunc fn, int64_t group_size) const {
    switch (fn) {
      case AggFunc::kCount:
        return Value(group_size >= 0 ? group_size : count);
      case AggFunc::kSum:
        if (count == 0) return Value::Null();
        return any_double ? Value(dsum) : Value(isum);
      case AggFunc::kAvg:
        if (count == 0) return Value::Null();
        return Value(dsum / static_cast<double>(count));
      case AggFunc::kMin:
        return has_value ? min_v : Value::Null();
      case AggFunc::kMax:
        return has_value ? max_v : Value::Null();
    }
    return Value::Null();
  }
};

/// Group-key hash of one cell. Unlike the join kernels' HashKeyCell, group
/// keys only ever compare cells of the SAME working-table column, so string
/// cells hash by dictionary code — no per-row string materialization.
inline uint64_t GroupCellHash(const Column& col, int64_t row) {
  if (col.IsNull(row)) return 0xdeadULL;
  switch (col.type()) {
    case DataType::kInt64:
      return SplitMix64(static_cast<uint64_t>(col.GetInt(row)));
    case DataType::kString:
      return SplitMix64(
          static_cast<uint64_t>(static_cast<uint32_t>(col.GetCode(row))));
    case DataType::kDouble: {
      // GroupCellsEqual treats every NaN as equal, so all NaN payloads must
      // hash alike (the canonical cell hash is per-bit-pattern).
      const double d = col.GetDouble(row);
      if (d != d) return 0xbadf00dULL;
      return HashKeyCell(col, row);
    }
    default:
      return HashKeyCell(col, row);
  }
}

/// Group-key equality of two rows of one column: SQL GROUP BY semantics, so
/// nulls form one group (unlike join keys, where null never matches) and
/// NaNs group together (matching Value::Compare, where NaN orders equal).
/// Both rows come from the same column, so string cells compare by
/// dictionary code and numerics by native type — no Value materialization.
inline bool GroupCellsEqual(const Column& col, int64_t a, int64_t b) {
  const bool an = col.IsNull(a);
  const bool bn = col.IsNull(b);
  if (an || bn) return an && bn;
  switch (col.type()) {
    case DataType::kInt64:
      return col.GetInt(a) == col.GetInt(b);
    case DataType::kDouble: {
      const double x = col.GetDouble(a);
      const double y = col.GetDouble(b);
      return x == y || (x != x && y != y);
    }
    case DataType::kString:
      return col.GetCode(a) == col.GetCode(b);
    default:
      return true;
  }
}

/// \brief Assigns group ids in first-seen row order.
///
/// Keys hash through the same canonical cell hashes as the join kernels into
/// a FlatMultiMap of candidate group ids; equality is verified against each
/// group's representative row (column-ref keys) or stored key values
/// (computed keys), so hash collisions cannot merge groups. Replaces the
/// seed's unordered_map<std::vector<Value>, ...> with its per-row key
/// allocations.
class GroupIndex {
 public:
  explicit GroupIndex(size_t expected_rows) { map_.Reserve(expected_rows); }

  /// Group id of `hash` where `equals(existing_gid)` confirms the match;
  /// assigns the next id when no candidate matches.
  template <typename EqFn>
  size_t GetOrAdd(uint64_t hash, EqFn&& equals) {
    int64_t gid = -1;
    map_.ForEach(hash, [&](int64_t g) {
      if (gid < 0 && equals(static_cast<size_t>(g))) gid = g;
    });
    if (gid < 0) {
      gid = static_cast<int64_t>(num_groups_++);
      map_.Insert(hash, gid);
    }
    return static_cast<size_t>(gid);
  }

  size_t num_groups() const { return num_groups_; }

 private:
  FlatMultiMap map_;
  size_t num_groups_ = 0;
};

}  // namespace

Result<QueryOutput> QueryExecutor::ExecuteWithProvenance(
    const ParsedQuery& query) const {
  ASSIGN_OR_RETURN(SpjOutput spj, ExecuteSpj(query));
  const Table& working = spj.table;
  BindScope scope = BindScope::ForTable(working);

  // Clone + bind select and group-by expressions against the working table.
  std::vector<SelectItem> select;
  select.reserve(query.select.size());
  for (const auto& item : query.select) {
    select.push_back({CloneExpr(item.expr), item.name});
    RETURN_NOT_OK(BindExpr(select.back().expr.get(), scope));
  }
  std::vector<ExprPtr> group_by;
  for (const auto& g : query.group_by) {
    group_by.push_back(CloneExpr(g));
    RETURN_NOT_OK(BindExpr(group_by.back().get(), scope));
  }

  bool has_agg = false;
  for (const auto& item : select) {
    if (item.expr->ContainsAggregate()) has_agg = true;
  }

  QueryOutput out;

  if (!has_agg && group_by.empty()) {
    // Plain projection; each output row's provenance is its working row.
    std::vector<std::vector<Value>> rows;
    RowContext ctx{{&working}, {0}};
    for (size_t r = 0; r < working.num_rows(); ++r) {
      ctx.rows[0] = r;
      std::vector<Value> row;
      for (const auto& item : select) {
        ASSIGN_OR_RETURN(Value v, EvalExpr(*item.expr, ctx));
        row.push_back(std::move(v));
      }
      rows.push_back(std::move(row));
      out.group_rows.push_back({static_cast<int64_t>(r)});
    }
    // Infer schema.
    Schema schema;
    for (size_t c = 0; c < select.size(); ++c) {
      DataType t = DataType::kInt64;
      for (const auto& row : rows) {
        if (!row[c].is_null()) {
          t = row[c].type();
          if (t == DataType::kDouble) break;
        }
      }
      RETURN_NOT_OK(schema.AddColumn(select[c].name, t));
    }
    Table result("result", std::move(schema));
    for (const auto& row : rows) RETURN_NOT_OK(result.AppendRow(row));
    out.result = std::move(result);
    out.spj = std::move(spj);
    return out;
  }

  // Partition rows by the group-by key, group ids in first-seen row order
  // (and therefore deterministic result-row order). Plain column-ref keys —
  // the common case — hash and compare directly on the working columns; only
  // computed keys (e.g. GROUP BY x + 1) evaluate per-row Values.
  std::vector<std::vector<int64_t>> group_rows;
  RowContext ctx{{&working}, {0}};
  bool all_column_refs = true;
  for (const auto& g : group_by) {
    if (g->kind != ExprKind::kColumnRef) all_column_refs = false;
  }
  if (all_column_refs) {
    std::vector<const Column*> gcols;
    gcols.reserve(group_by.size());
    for (const auto& g : group_by) gcols.push_back(&working.column(g->bound_index));
    GroupIndex index(working.num_rows());
    std::vector<int64_t> rep;  // first-seen representative row per group
    for (size_t r = 0; r < working.num_rows(); ++r) {
      uint64_t h = kRowKeyHashSeed;
      for (const Column* c : gcols) {
        h = CombineKeyHash(h, GroupCellHash(*c, static_cast<int64_t>(r)));
      }
      size_t gid = index.GetOrAdd(h, [&](size_t g) {
        for (const Column* c : gcols) {
          if (!GroupCellsEqual(*c, static_cast<int64_t>(r), rep[g])) return false;
        }
        return true;
      });
      if (gid == group_rows.size()) {
        group_rows.emplace_back();
        rep.push_back(static_cast<int64_t>(r));
      }
      group_rows[gid].push_back(static_cast<int64_t>(r));
    }
  } else {
    GroupIndex index(working.num_rows());
    std::vector<std::vector<Value>> group_keys;
    for (size_t r = 0; r < working.num_rows(); ++r) {
      ctx.rows[0] = r;
      std::vector<Value> key;
      key.reserve(group_by.size());
      for (const auto& g : group_by) {
        ASSIGN_OR_RETURN(Value v, EvalExpr(*g, ctx));
        key.push_back(std::move(v));
      }
      uint64_t h = kRowKeyHashSeed;
      for (const Value& v : key) h = CombineKeyHash(h, v.Hash());
      size_t gid = index.GetOrAdd(h, [&](size_t g) { return group_keys[g] == key; });
      if (gid == group_rows.size()) {
        group_rows.emplace_back();
        group_keys.push_back(std::move(key));
      }
      group_rows[gid].push_back(static_cast<int64_t>(r));
    }
  }
  if (group_by.empty() && group_rows.empty()) {
    // Aggregates without GROUP BY over an empty input: one empty group.
    group_rows.emplace_back();
  }

  // Collect aggregate nodes across select items.
  std::vector<Expr*> agg_nodes;
  for (auto& item : select) item.expr->CollectAggregates(&agg_nodes);

  // Evaluate each group.
  std::vector<std::vector<Value>> rows;
  rows.reserve(group_rows.size());
  for (const auto& members : group_rows) {
    std::unordered_map<const Expr*, Value> agg_values;
    for (Expr* agg : agg_nodes) {
      AggState state;
      if (agg->arg == nullptr) {
        // COUNT(*)
        agg_values.emplace(agg,
                           Value(static_cast<int64_t>(members.size())));
        continue;
      }
      for (int64_t r : members) {
        ctx.rows[0] = static_cast<size_t>(r);
        ASSIGN_OR_RETURN(Value v, EvalExpr(*agg->arg, ctx));
        state.Add(v);
      }
      agg_values.emplace(agg, state.Finish(agg->agg, -1));
    }
    ctx.rows[0] = members.empty() ? 0 : static_cast<size_t>(members.front());
    std::vector<Value> row;
    for (const auto& item : select) {
      ASSIGN_OR_RETURN(Value v, EvalExpr(*item.expr, ctx, &agg_values));
      row.push_back(std::move(v));
    }
    rows.push_back(std::move(row));
  }

  // Infer the output schema (promote to double when any group yields one).
  Schema schema;
  for (size_t c = 0; c < select.size(); ++c) {
    DataType t = DataType::kInt64;
    bool seen = false;
    for (const auto& row : rows) {
      if (row[c].is_null()) continue;
      if (!seen) {
        t = row[c].type();
        seen = true;
      } else if (row[c].type() == DataType::kDouble && t == DataType::kInt64) {
        t = DataType::kDouble;
      }
    }
    RETURN_NOT_OK(schema.AddColumn(select[c].name, t));
  }
  Table result("result", std::move(schema));
  for (const auto& row : rows) RETURN_NOT_OK(result.AppendRow(row));

  // Identify which output columns are group-by columns.
  for (size_t c = 0; c < select.size(); ++c) {
    const Expr& e = *select[c].expr;
    if (e.kind != ExprKind::kColumnRef) continue;
    for (const auto& g : group_by) {
      if (g->bound_index == e.bound_index) {
        out.group_by_output_cols.push_back(static_cast<int>(c));
        break;
      }
    }
  }

  out.result = std::move(result);
  out.group_rows = std::move(group_rows);
  out.spj = std::move(spj);
  return out;
}

Result<Table> QueryExecutor::Execute(const ParsedQuery& query) const {
  ASSIGN_OR_RETURN(QueryOutput out, ExecuteWithProvenance(query));
  return std::move(out.result);
}

}  // namespace cajade
