#include "src/exec/evaluator.h"

#include <cmath>

#include "src/common/string_util.h"

namespace cajade {

void BindScope::AddColumn(const std::string& qualifier, const std::string& name,
                          int rel, int col) {
  Entry e{rel, col};
  if (!qualifier.empty()) {
    qualified_.emplace(qualifier + "." + name, e);
  }
  unqualified_[name].push_back(e);
}

BindScope BindScope::ForTable(const Table& table, const std::string& alias) {
  BindScope scope;
  for (size_t i = 0; i < table.schema().num_columns(); ++i) {
    const std::string& name = table.schema().column(i).name;
    auto dot = name.find('.');
    if (dot != std::string::npos) {
      // Working-table column "alias.column".
      scope.AddColumn(name.substr(0, dot), name.substr(dot + 1), 0,
                      static_cast<int>(i));
    } else {
      scope.AddColumn(alias, name, 0, static_cast<int>(i));
    }
    // The full name always resolves too (e.g. prov_game_winner).
    if (!name.empty()) {
      scope.unqualified_[name].push_back({0, static_cast<int>(i)});
    }
  }
  return scope;
}

Result<std::pair<int, int>> BindScope::Resolve(const std::string& qualifier,
                                               const std::string& name) const {
  if (!qualifier.empty()) {
    auto it = qualified_.find(qualifier + "." + name);
    if (it == qualified_.end()) {
      return Status::BindError(
          Format("unknown column '%s.%s'", qualifier.c_str(), name.c_str()));
    }
    return std::make_pair(it->second.rel, it->second.col);
  }
  auto it = unqualified_.find(name);
  if (it == unqualified_.end() || it->second.empty()) {
    return Status::BindError(Format("unknown column '%s'", name.c_str()));
  }
  const Entry& first = it->second.front();
  for (const Entry& e : it->second) {
    if (e.rel != first.rel || e.col != first.col) {
      return Status::BindError(Format("ambiguous column '%s'", name.c_str()));
    }
  }
  return std::make_pair(first.rel, first.col);
}

Status BindExpr(Expr* e, const BindScope& scope) {
  if (e == nullptr) return Status::OK();
  switch (e->kind) {
    case ExprKind::kColumnRef: {
      ASSIGN_OR_RETURN(auto loc, scope.Resolve(e->table, e->column));
      e->bound_alias = loc.first;
      e->bound_index = loc.second;
      return Status::OK();
    }
    case ExprKind::kBinary:
      RETURN_NOT_OK(BindExpr(e->left.get(), scope));
      return BindExpr(e->right.get(), scope);
    case ExprKind::kAggregate:
      return BindExpr(e->arg.get(), scope);
    case ExprKind::kLiteral:
      return Status::OK();
  }
  return Status::OK();
}

bool IsTruthy(const Value& v) {
  if (v.is_null()) return false;
  if (v.is_int()) return v.AsInt() != 0;
  if (v.is_double()) return v.AsDouble() != 0.0;
  return !v.AsString().empty();
}

namespace {

Result<Value> EvalBinary(const Expr& e, const RowContext& ctx,
                         const std::unordered_map<const Expr*, Value>* aggs) {
  // Logical operators get short-circuit + null-as-false semantics.
  if (e.op == BinaryOp::kAnd || e.op == BinaryOp::kOr) {
    ASSIGN_OR_RETURN(Value l, EvalExpr(*e.left, ctx, aggs));
    bool lt = IsTruthy(l);
    if (e.op == BinaryOp::kAnd && !lt) return Value(int64_t{0});
    if (e.op == BinaryOp::kOr && lt) return Value(int64_t{1});
    ASSIGN_OR_RETURN(Value r, EvalExpr(*e.right, ctx, aggs));
    return Value(static_cast<int64_t>(IsTruthy(r) ? 1 : 0));
  }

  ASSIGN_OR_RETURN(Value l, EvalExpr(*e.left, ctx, aggs));
  ASSIGN_OR_RETURN(Value r, EvalExpr(*e.right, ctx, aggs));
  if (l.is_null() || r.is_null()) return Value::Null();

  switch (e.op) {
    case BinaryOp::kEq:
      return Value(static_cast<int64_t>(l == r ? 1 : 0));
    case BinaryOp::kNe:
      return Value(static_cast<int64_t>(l != r ? 1 : 0));
    case BinaryOp::kLt:
      return Value(static_cast<int64_t>(l < r ? 1 : 0));
    case BinaryOp::kLe:
      return Value(static_cast<int64_t>(l <= r ? 1 : 0));
    case BinaryOp::kGt:
      return Value(static_cast<int64_t>(l > r ? 1 : 0));
    case BinaryOp::kGe:
      return Value(static_cast<int64_t>(l >= r ? 1 : 0));
    default:
      break;
  }

  // Arithmetic.
  if (!l.is_numeric() || !r.is_numeric()) {
    return Status::ExecutionError(
        Format("arithmetic on non-numeric operands in %s", e.ToString().c_str()));
  }
  bool as_double = l.is_double() || r.is_double() || e.op == BinaryOp::kDiv;
  if (as_double) {
    double a = l.ToDouble(), b = r.ToDouble();
    switch (e.op) {
      case BinaryOp::kAdd:
        return Value(a + b);
      case BinaryOp::kSub:
        return Value(a - b);
      case BinaryOp::kMul:
        return Value(a * b);
      case BinaryOp::kDiv:
        if (b == 0.0) return Value::Null();
        return Value(a / b);
      default:
        break;
    }
  } else {
    int64_t a = l.AsInt(), b = r.AsInt();
    switch (e.op) {
      case BinaryOp::kAdd:
        return Value(a + b);
      case BinaryOp::kSub:
        return Value(a - b);
      case BinaryOp::kMul:
        return Value(a * b);
      default:
        break;
    }
  }
  return Status::Internal("unhandled binary operator");
}

}  // namespace

Result<Value> EvalExpr(const Expr& e, const RowContext& ctx,
                       const std::unordered_map<const Expr*, Value>* agg_values) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kColumnRef: {
      if (e.bound_alias < 0 || e.bound_index < 0) {
        return Status::ExecutionError(
            Format("unbound column reference '%s'", e.ToString().c_str()));
      }
      const Table* t = ctx.tables[e.bound_alias];
      return t->GetValue(ctx.rows[e.bound_alias], e.bound_index);
    }
    case ExprKind::kBinary:
      return EvalBinary(e, ctx, agg_values);
    case ExprKind::kAggregate: {
      if (agg_values == nullptr) {
        return Status::ExecutionError("aggregate evaluated outside GROUP BY");
      }
      auto it = agg_values->find(&e);
      if (it == agg_values->end()) {
        return Status::Internal("aggregate value missing for " + e.ToString());
      }
      return it->second;
    }
  }
  return Status::Internal("unknown expression kind");
}

Result<Value> EvalExpr(const Expr& e, const Table& table, size_t row) {
  RowContext ctx;
  ctx.tables = {&table};
  ctx.rows = {row};
  return EvalExpr(e, ctx);
}

}  // namespace cajade
