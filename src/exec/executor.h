// Query execution for the single-block SPJA subset.
//
// Pipeline: per-relation predicate pushdown -> stats-driven greedy hash
// equi-join ordering (smallest estimated build side first) -> typed join
// kernels (ProbeEquiJoin: dense-counting / dictionary-code / packed
// composite-key / hash+verify layouts over the flat open-addressing
// multimap) -> residual filters -> working-table materialization -> typed
// hash group-by aggregation with first-seen group order. The working table
// (the pre-aggregation join result) and the per-group row partitions are
// retained: they are exactly the why-provenance the explanation engine needs
// (paper Definition 1).
//
// The seed's tuple-key implementation (per-row std::vector<Value> keys into
// an unordered_multimap) survives as ReferenceExecuteSpj, the differential-
// testing oracle and the BM_ExecuteSpjSeed baseline.
//
// Ownership and thread-safety: the executor borrows the caller's Database
// for the duration of a call and returns fresh caller-owned result tables.
// It is stateless apart from the stats catalog below (stats_mu_-guarded), so
// concurrent Execute calls on one instance are safe.

#ifndef CAJADE_EXEC_EXECUTOR_H_
#define CAJADE_EXEC_EXECUTOR_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/sql/expr.h"
#include "src/stats/table_stats.h"
#include "src/storage/database.h"

namespace cajade {

/// The materialized select-project-join result, before aggregation.
struct SpjOutput {
  /// Columns named "<alias>.<column>".
  Table table;
  /// FROM-clause aliases in order.
  std::vector<std::string> aliases;
  /// Relation name per alias.
  std::vector<std::string> relations;
  /// source_rows[a][r]: base-table row id of alias a in working row r.
  std::vector<std::vector<int64_t>> source_rows;
};

/// Full result of an aggregate query, with provenance.
struct QueryOutput {
  /// The query answer.
  Table result;
  /// result row -> working-table rows contributing to it.
  std::vector<std::vector<int64_t>> group_rows;
  /// Output-column indexes holding group-by values.
  std::vector<int> group_by_output_cols;
  /// The pre-aggregation join result.
  SpjOutput spj;
};

/// \brief Executes parsed queries against a Database.
class QueryExecutor {
 public:
  explicit QueryExecutor(const Database* db) : db_(db) {}

  const Database* db() const { return db_; }

  /// Runs the query, returning only the answer table.
  Result<Table> Execute(const ParsedQuery& query) const;

  /// Runs the query, additionally returning the working table and group
  /// partitions (why-provenance).
  Result<QueryOutput> ExecuteWithProvenance(const ParsedQuery& query) const;

  /// Runs the select-project-join block through the typed join kernels.
  /// Working rows are emitted grouped by the first alias's selected rows in
  /// order; join matches expand in build-side selection order.
  Result<SpjOutput> ExecuteSpj(const ParsedQuery& query) const;

  /// Differential-testing oracle: the seed's tuple-key implementation
  /// (std::vector<Value> keys hashed into an unordered_multimap, first
  /// textually-connected join order). Produces the same working-row multiset
  /// as ExecuteSpj; row order may differ when the planner reorders joins.
  Result<SpjOutput> ReferenceExecuteSpj(const ParsedQuery& query) const;

 private:
  /// Cached full-table statistics (distinct counts included; computed on
  /// first use, keyed by table name + row count). Tables must stay
  /// unmodified while a query runs, and one executor serves one query
  /// stream at a time — run concurrent query streams on separate executors.
  const TableStats& Stats(const Table& table) const EXCLUDES(stats_mu_);

  /// Range-only statistics (null counts, numeric min/max): a plain
  /// sequential scan with no hashing, enough for the join kernels' layout
  /// selection. The full distinct-count pass runs only when the planner
  /// actually needs an ndv tie-break.
  const TableStats& StatsRanges(const Table& table) const
      EXCLUDES(stats_mu_);

  const Database* db_;
  /// Serializes access to the single-stream StatsCatalog methods. Note the
  /// returned references escape the critical section by design: entries
  /// are only ever upgraded in place (never moved or dropped), so a
  /// reference handed out under the lock stays valid — see StatsCatalog.
  mutable Mutex stats_mu_;
  mutable StatsCatalog stats_ GUARDED_BY(stats_mu_);
};

}  // namespace cajade

#endif  // CAJADE_EXEC_EXECUTOR_H_
