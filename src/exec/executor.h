// Query execution for the single-block SPJA subset.
//
// Pipeline: per-relation predicate pushdown -> greedy hash equi-join ordering
// -> residual filters -> working-table materialization -> hash group-by
// aggregation. The working table (the pre-aggregation join result) and the
// per-group row partitions are retained: they are exactly the
// why-provenance the explanation engine needs (paper Definition 1).

#ifndef CAJADE_EXEC_EXECUTOR_H_
#define CAJADE_EXEC_EXECUTOR_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/sql/expr.h"
#include "src/storage/database.h"

namespace cajade {

/// The materialized select-project-join result, before aggregation.
struct SpjOutput {
  /// Columns named "<alias>.<column>".
  Table table;
  /// FROM-clause aliases in order.
  std::vector<std::string> aliases;
  /// Relation name per alias.
  std::vector<std::string> relations;
  /// source_rows[a][r]: base-table row id of alias a in working row r.
  std::vector<std::vector<int64_t>> source_rows;
};

/// Full result of an aggregate query, with provenance.
struct QueryOutput {
  /// The query answer.
  Table result;
  /// result row -> working-table rows contributing to it.
  std::vector<std::vector<int64_t>> group_rows;
  /// Output-column indexes holding group-by values.
  std::vector<int> group_by_output_cols;
  /// The pre-aggregation join result.
  SpjOutput spj;
};

/// \brief Executes parsed queries against a Database.
class QueryExecutor {
 public:
  explicit QueryExecutor(const Database* db) : db_(db) {}

  /// Runs the query, returning only the answer table.
  Result<Table> Execute(const ParsedQuery& query) const;

  /// Runs the query, additionally returning the working table and group
  /// partitions (why-provenance).
  Result<QueryOutput> ExecuteWithProvenance(const ParsedQuery& query) const;

 private:
  Result<SpjOutput> ExecuteSpj(const ParsedQuery& query) const;

  const Database* db_;
};

}  // namespace cajade

#endif  // CAJADE_EXEC_EXECUTOR_H_
