// Reusable multi-column hash equi-join kernels on row-id sets. Used by the
// query executor and by augmented-provenance-table materialization.
//
// Two entry points share one engine:
//  - HashEquiJoin: both sides are (table, row-id set) pairs.
//  - ProbeEquiJoin: the probe side is a tuple stream whose key columns may
//    live in different base tables (the executor's partial join result);
//    matches come back as (probe index, build row) pairs.
//
// The engine picks a layout per join from the build side's column types and
// (when provided) precomputed TableStats:
//  - single INT64 key: raw-value offsets, dense counting layout when the key
//    range is small, flat open-addressing table otherwise;
//  - single STRING key: dictionary codes, the probe dictionary remapped into
//    the build code space once;
//  - multi-column INT64/STRING keys whose combined range fits 64 bits:
//    packed composite keys (mixed-radix offsets), which stay injective so
//    probes need no equality re-check;
//  - everything else (DOUBLE or cross-type keys, oversized ranges): canonical
//    row-key hashes into the flat table with per-entry verification.
//
// Contracts (load-bearing for every caller, from the executor to the
// serving layer):
//  - NULL semantics: a NULL key cell never matches — not even NULL vs NULL,
//    and not as a middle column of a composite key. Enforced by explicit
//    guards in every layout (never by hash-sentinel coincidence), on tree
//    edges and cycle-closing filters alike. GROUP BY deliberately differs
//    (NULLs form one group); that divergence lives in the executor.
//  - Ownership: JoinBuildIndex borrows the build table — it stores raw
//    column pointers and never copies payloads. The table must outlive the
//    index and must not be mutated while the index exists; version-keyed
//    caches (AptIndexCache) enforce this by keying on
//    Table::content_version().
//  - Thread safety: a fully constructed JoinBuildIndex is immutable;
//    Probe() is const and safe to call from any number of threads
//    concurrently. Construction is not synchronized — build on one thread,
//    share afterwards (the caches do this behind a shared_future).
//  - Determinism: matches are emitted grouped by probe index in ascending
//    order, and within one probe tuple in build-row order, regardless of
//    layout. Downstream explanation ranking relies on this stability.

#ifndef CAJADE_EXEC_JOIN_H_
#define CAJADE_EXEC_JOIN_H_

#include <cstdint>
#include <vector>

#include "src/exec/flat_hash.h"
#include "src/stats/table_stats.h"
#include "src/storage/table.h"

namespace cajade {

/// Key columns for an equi-join: left_cols[i] must equal right_cols[i].
struct JoinKeySpec {
  std::vector<int> left_cols;
  std::vector<int> right_cols;
};

/// One probe-side key column: a base-table column plus the row-id stream
/// addressing it. Streams of all key columns passed to one ProbeEquiJoin call
/// must have identical length (one entry per probe tuple); distinct columns
/// may draw rows from distinct streams (and distinct tables).
struct ProbeKeyCol {
  const Column* col;
  const std::vector<int64_t>* rows;
};

/// \brief Joins a probe tuple stream against `build_rows` of `build`.
///
/// Emits (probe index, build row) pairs grouped by probe index in ascending
/// order; within one probe tuple, build matches appear in `build_rows` order
/// — downstream code relies on this stability. Null key values never match
/// (SQL equi-join semantics, including null vs null, in every layout).
/// Numeric keys compare exactly across INT64/DOUBLE without the 2^53
/// double-precision collapse.
///
/// `build_stats` (statistics of the full `build` table) lets the planner
/// size dense layouts and pack composite keys without rescanning the build
/// rows; pass nullptr to fall back to a per-join key-range scan.
std::vector<std::pair<int64_t, int64_t>> ProbeEquiJoin(
    const Table& build, const std::vector<int64_t>& build_rows,
    const std::vector<int>& build_cols, const std::vector<ProbeKeyCol>& probe,
    size_t n_probe, const TableStats* build_stats = nullptr);

/// \brief Joins `left_rows` x `right_rows` on the key spec.
///
/// Output pairs are grouped by left row in the order of `left_rows` (probe
/// side); within one left row, right matches appear in `right_rows` order.
/// Same key semantics and layout selection as ProbeEquiJoin, of which this is
/// a thin wrapper; `right_stats` describes the build (right) table.
std::vector<std::pair<int64_t, int64_t>> HashEquiJoin(
    const Table& left, const std::vector<int64_t>& left_rows, const Table& right,
    const std::vector<int64_t>& right_rows, const JoinKeySpec& keys,
    const TableStats* right_stats = nullptr);

/// Differential-testing oracle: the seed's hash-build/probe-verify algorithm
/// restated on std::unordered_map with per-key vectors so duplicate matches
/// come back in deterministic right_rows order (the seed's
/// unordered_multimap left that order implementation-defined). The verbatim
/// seed code survives as SeedMultimapJoin in bench/bench_micro.cc, the
/// "before" side of BENCH_join.json.
std::vector<std::pair<int64_t, int64_t>> ReferenceHashEquiJoin(
    const Table& left, const std::vector<int64_t>& left_rows, const Table& right,
    const std::vector<int64_t>& right_rows, const JoinKeySpec& keys);

/// Seed value for folding per-cell hashes into a row-key hash.
inline constexpr uint64_t kRowKeyHashSeed = 0x12345678;

/// Order-dependent fold of a per-cell hash into a row-key hash; HashRowKey is
/// exactly this fold of HashKeyCell over the key columns starting from
/// kRowKeyHashSeed. Exposed so callers hashing keys assembled from columns of
/// different tables (executor tuple keys, group-by keys) stay consistent with
/// build-side HashRowKey hashes.
inline uint64_t CombineKeyHash(uint64_t seed, uint64_t cell_hash) {
  return seed ^ (cell_hash + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Canonical hash of one key cell: null hashes to a fixed sentinel, integral
/// numeric values (from either physical type) hash as their int64, other
/// doubles by bit pattern, strings by content. Consistent with KeyCellsEqual
/// across INT64/DOUBLE while preserving full int64 precision.
uint64_t HashKeyCell(const Column& col, int64_t row);

/// Equi-join cell equality (null never equals anything, including null).
/// Numeric comparisons are exact (INT64/INT64 compares integers; INT64 vs
/// DOUBLE matches only when the double holds that exact integer).
bool KeyCellsEqual(const Column& a, int64_t row_a, const Column& b, int64_t row_b);

/// Combines per-column value hashes for `row` over `cols`; helper shared with
/// APT index building and distinct-count statistics. Numeric cells hash a
/// canonical representation (integral values as int64, others by double bit
/// pattern) consistent with RowKeysEqual across INT64/DOUBLE.
uint64_t HashRowKey(const Table& table, int64_t row, const std::vector<int>& cols);

/// Column-wise equality of two rows on the given key columns (null != null).
/// Numeric comparisons are exact (INT64/INT64 compares integers; INT64 vs
/// DOUBLE matches only when the double holds that exact integer).
bool RowKeysEqual(const Table& a, int64_t row_a, const std::vector<int>& cols_a,
                  const Table& b, int64_t row_b, const std::vector<int>& cols_b);

/// Whether any key column of `row` is null. Callers enforcing SQL equi-join
/// semantics (null never matches, including null vs null) use this as the
/// explicit guard instead of relying on hash/equality internals to reject
/// null cells.
inline bool HasNullKey(const Table& t, int64_t row, const std::vector<int>& cols) {
  for (int c : cols) {
    if (t.column(c).IsNull(row)) return true;
  }
  return false;
}

/// \brief A reusable build-side equi-join index over all rows of one table.
///
/// ProbeEquiJoin plans its key layout per call from both sides, so a cached
/// build side cannot survive across probes. This class plans from the build
/// side alone — INT64 columns encode as value offsets from the build minimum
/// (sized from `build_stats` when given, one sequential range scan
/// otherwise), STRING columns as the build dictionary's codes — and resolves
/// the probe side per Probe() call (probe dictionaries remap into the build
/// code space, integral DOUBLE probe values match INT64 keys exactly).
/// Layouts mirror ProbeEquiJoin: dense counting when the packed key range is
/// small, flat open-addressing on the SplitMix64-finalized packed key (a
/// bijection, so typed probes skip verification), and canonical
/// hash+verify for DOUBLE or oversized keys.
///
/// Semantics match ProbeEquiJoin exactly: null keys never match (including
/// null vs null, and middle columns of composite keys) in every layout —
/// enforced by explicit null checks in each key extractor, never by hash
/// sentinel behavior — and matches per probe tuple come back in ascending
/// build-row order. Cross-type probes that can never match (e.g. a STRING
/// probe against an INT64 build key) produce no pairs.
///
/// The index holds a pointer to `build`, which must outlive it. Instances
/// are immutable after construction and safe for concurrent Probe() calls.
class JoinBuildIndex {
 public:
  /// Indexes all rows of `build` on `build_cols`. `build_stats` (statistics
  /// of the full table, the range tier suffices) lets planning skip the
  /// per-column key-range scan; stale stats (row-count or arity drift) are
  /// ignored.
  JoinBuildIndex(const Table& build, std::vector<int> build_cols,
                 const TableStats* build_stats = nullptr);

  /// Joins a probe tuple stream (see ProbeKeyCol; one entry per key column,
  /// `probe.size() == build_cols.size()`) against the indexed rows,
  /// appending (probe index, build row) pairs to `*out` grouped by probe
  /// index in ascending order. Returns false — stopping early — as soon as
  /// `out->size()` exceeds `max_matches` (0 = unlimited), checked after
  /// each probe tuple.
  bool Probe(const std::vector<ProbeKeyCol>& probe, size_t n_probe,
             size_t max_matches,
             std::vector<std::pair<int64_t, int64_t>>* out) const;

  /// Rows indexed (rows with a null key cell are excluded at build time).
  size_t size() const { return size_; }

  const std::vector<int>& columns() const { return cols_; }

  /// Approximate heap footprint of the index structures (dense offsets/rows,
  /// flat-table slots and entries, per-column plans) — the unit of the
  /// byte-accounted LRU bound on AptIndexCache. Excludes the borrowed build
  /// table.
  size_t ApproxBytes() const;

 private:
  enum class Layout {
    kEmpty,    ///< no indexable rows (all-null key column / empty dictionary)
    kDense,    ///< counting-sort groups over the packed key range
    kTyped,    ///< flat table on SplitMix64(packed key), injective
    kGeneric,  ///< flat table on HashRowKey, probe verifies equality
  };

  /// Per-column codec of the typed packed key (INT64 offsets / build codes).
  struct ColPlan {
    bool dict = false;
    int64_t min = 0;   ///< int columns: build-side key range
    int64_t max = -1;
    uint64_t range = 0;  ///< per-column key-space size; 0 means 2^64
    uint64_t stride = 1;
  };

  /// Resolved probe-side access for one key column of one Probe() call.
  struct ProbeColView;

  template <typename Fn>
  void ForEachMatch(uint64_t packed, Fn&& fn) const;

  const Table* build_;
  std::vector<int> cols_;
  Layout layout_ = Layout::kEmpty;
  std::vector<ColPlan> plans_;
  uint64_t total_range_ = 0;  ///< dense layout: packed key space size
  std::vector<int32_t> dense_offsets_;
  std::vector<int64_t> dense_rows_;
  FlatMultiMap flat_;
  size_t size_ = 0;
};

}  // namespace cajade

#endif  // CAJADE_EXEC_JOIN_H_
