// Reusable multi-column hash equi-join on row-id sets. Used by the query
// executor and by augmented-provenance-table materialization.

#ifndef CAJADE_EXEC_JOIN_H_
#define CAJADE_EXEC_JOIN_H_

#include <cstdint>
#include <vector>

#include "src/storage/table.h"

namespace cajade {

/// Key columns for an equi-join: left_cols[i] must equal right_cols[i].
struct JoinKeySpec {
  std::vector<int> left_cols;
  std::vector<int> right_cols;
};

/// \brief Joins `left_rows` x `right_rows` on the key spec.
///
/// Output pairs are grouped by left row in the order of `left_rows` (probe
/// side) — downstream code relies on this stability. Null key values never
/// match (SQL equi-join semantics).
std::vector<std::pair<int64_t, int64_t>> HashEquiJoin(
    const Table& left, const std::vector<int64_t>& left_rows, const Table& right,
    const std::vector<int64_t>& right_rows, const JoinKeySpec& keys);

/// Combines per-column value hashes for `row` over `cols`; helper shared with
/// the executor's tuple-based join.
uint64_t HashRowKey(const Table& table, int64_t row, const std::vector<int>& cols);

/// Column-wise equality of two rows on the given key columns (null != null).
bool RowKeysEqual(const Table& a, int64_t row_a, const std::vector<int>& cols_a,
                  const Table& b, int64_t row_b, const std::vector<int>& cols_b);

}  // namespace cajade

#endif  // CAJADE_EXEC_JOIN_H_
