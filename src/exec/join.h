// Reusable multi-column hash equi-join on row-id sets. Used by the query
// executor and by augmented-provenance-table materialization.

#ifndef CAJADE_EXEC_JOIN_H_
#define CAJADE_EXEC_JOIN_H_

#include <cstdint>
#include <vector>

#include "src/storage/table.h"

namespace cajade {

/// Key columns for an equi-join: left_cols[i] must equal right_cols[i].
struct JoinKeySpec {
  std::vector<int> left_cols;
  std::vector<int> right_cols;
};

/// \brief Joins `left_rows` x `right_rows` on the key spec.
///
/// Output pairs are grouped by left row in the order of `left_rows` (probe
/// side); within one left row, right matches appear in `right_rows` order —
/// downstream code relies on this stability. Null key values never match
/// (SQL equi-join semantics). Numeric keys compare exactly: INT64 keys match
/// DOUBLE keys holding the same mathematical value, without the 2^53
/// double-precision collapse (ints differing only beyond 2^53 stay
/// distinct).
///
/// Internally dispatches to typed fast paths — single INT64 keys join on the
/// raw values, single STRING keys on dictionary codes (the smaller
/// dictionary is remapped once instead of hashing strings per row) — and
/// falls back to a hash+verify loop on a flat open-addressing table for
/// multi-column or mixed-type keys.
std::vector<std::pair<int64_t, int64_t>> HashEquiJoin(
    const Table& left, const std::vector<int64_t>& left_rows, const Table& right,
    const std::vector<int64_t>& right_rows, const JoinKeySpec& keys);

/// Differential-testing oracle: the seed's hash-build/probe-verify algorithm
/// restated on std::unordered_map with per-key vectors so duplicate matches
/// come back in deterministic right_rows order (the seed's
/// unordered_multimap left that order implementation-defined). The verbatim
/// seed code survives as SeedMultimapJoin in bench/bench_micro.cc, the
/// "before" side of BENCH_join.json.
std::vector<std::pair<int64_t, int64_t>> ReferenceHashEquiJoin(
    const Table& left, const std::vector<int64_t>& left_rows, const Table& right,
    const std::vector<int64_t>& right_rows, const JoinKeySpec& keys);

/// Combines per-column value hashes for `row` over `cols`; helper shared with
/// APT index building and distinct-count statistics. Numeric cells hash a
/// canonical representation (integral values as int64, others by double bit
/// pattern) consistent with RowKeysEqual across INT64/DOUBLE.
uint64_t HashRowKey(const Table& table, int64_t row, const std::vector<int>& cols);

/// Column-wise equality of two rows on the given key columns (null != null).
/// Numeric comparisons are exact (INT64/INT64 compares integers; INT64 vs
/// DOUBLE matches only when the double holds that exact integer).
bool RowKeysEqual(const Table& a, int64_t row_a, const std::vector<int>& cols_a,
                  const Table& b, int64_t row_b, const std::vector<int>& cols_b);

}  // namespace cajade

#endif  // CAJADE_EXEC_JOIN_H_
